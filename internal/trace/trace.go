// Package trace is the suite's zero-dependency structured tracer: it
// records where the time of a run went — parse, build, dispatch, kernel,
// verify, refinement — as a tree of spans with nanosecond monotonic
// timestamps, cheap enough to thread through the sweep supervisor, the
// autotuner, the graph ingest pipeline, and the GPU simulator without
// perturbing the measurements the paper's methodology depends on.
//
// The design has two halves:
//
//   - Recording. A Tracer owns a small set of sharded ring buffers.
//     Span sites carry a Ctx (tracer pointer + trace/span identity);
//     Ctx.Start captures the monotonic start time and a sequence
//     number, Ctx.End appends one completed-span entry to a shard ring.
//     Nothing is serialized or locked globally on the hot path, and the
//     disabled path — a zero Ctx — is a single nil check per span site:
//     every Ctx method returns immediately when no tracer is attached,
//     so instrumented code pays nothing when tracing is off (pinned by
//     cmd/bench -traceoverhead, DESIGN.md §15).
//
//   - Flushing. At run boundaries (a sweep task, a tune trial, an HTTP
//     request) the owner calls Flush, which drains every shard under a
//     single flush lock and hands the completed events, ordered by
//     their begin sequence, to the Sink: a JSONL journal for the CLIs
//     (-trace) or a bounded in-memory store for the serve endpoint
//     (GET /v1/trace/{id}).
//
// Ring overflow drops whole spans (begin and end together, so a journal
// never goes unbalanced) and counts them in Counters.Dropped; size the
// capacity up rather than flushing from a span site.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// An Attr is one key/value annotation on a span or point.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Event is one completed span (or instant point) as delivered to a
// Sink. Start is nanoseconds on the tracer's monotonic clock (its
// epoch is the Tracer's creation); Dur is the span length (zero for
// points). BeginSeq/EndSeq are the tracer-wide total order of the
// span's open and close, which is what makes a rendered journal
// balanced and nestable: a parent's begin always precedes its
// children's, and a child's end always precedes its parent's.
type Event struct {
	Trace  uint64 `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Point  bool   `json:"point,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`

	BeginSeq uint64 `json:"-"`
	EndSeq   uint64 `json:"-"`
}

// Sink receives each flush's completed events, ordered by BeginSeq.
// Write is always called under the tracer's flush lock — never
// concurrently — but from whichever goroutine flushed.
type Sink interface {
	Write(events []Event)
	Close() error
}

// Counters is the tracer's live accounting, safe to read at any time:
// Started-Finished is the number of currently open spans, which is how
// a stuck run shows up on a dashboard before any journal is cut.
type Counters struct {
	Started  int64 `json:"spans_started"`
	Finished int64 `json:"spans_finished"`
	Points   int64 `json:"points"`
	Dropped  int64 `json:"dropped"`
}

const (
	defaultShards   = 8
	defaultCapacity = 4096 // per shard
)

// Config sizes a Tracer. The zero value (plus a Sink) is serviceable.
type Config struct {
	// Sink receives flushed events. Required.
	Sink Sink
	// Capacity is the per-shard ring capacity; 0 means 4096. A full
	// shard drops whole spans (counted) until the next Flush.
	Capacity int
	// Shards is the ring count completed spans are striped over; 0
	// means 8. More shards, less End contention under wide fan-out.
	Shards int
}

type shard struct {
	mu  sync.Mutex
	buf []Event
}

// Tracer records spans into sharded rings and flushes them to its
// sink. All methods are safe for concurrent use.
type Tracer struct {
	sink  Sink
	epoch time.Time
	cap   int

	seq atomic.Uint64 // begin/end/point total order
	ids atomic.Uint64 // span and trace id allocator (shared sequence)

	started  atomic.Int64
	finished atomic.Int64
	points   atomic.Int64
	dropped  atomic.Int64

	flushMu sync.Mutex
	shards  []shard
	scratch []Event // flush staging, reused across flushes
}

// New creates a Tracer. It panics without a Sink — a tracer that
// records into nothing is always a wiring bug.
func New(cfg Config) *Tracer {
	if cfg.Sink == nil {
		panic("trace.New: Config.Sink is required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards
	}
	return &Tracer{
		sink:   cfg.Sink,
		epoch:  time.Now(),
		cap:    cfg.Capacity,
		shards: make([]shard, cfg.Shards),
	}
}

// now is nanoseconds on the tracer's monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// NewTrace opens a fresh trace whose root span is name and returns the
// root's Ctx. The trace id doubles as the root span id.
func (t *Tracer) NewTrace(name string) Ctx {
	if t == nil {
		return Ctx{}
	}
	id := t.ids.Add(1)
	t.started.Add(1)
	return Ctx{
		tr:    t,
		trace: id,
		span:  id,
		name:  name,
		start: t.now(),
		bseq:  t.seq.Add(1),
	}
}

// Counters returns the live span accounting.
func (t *Tracer) Counters() Counters {
	if t == nil {
		return Counters{}
	}
	return Counters{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Points:   t.points.Load(),
		Dropped:  t.dropped.Load(),
	}
}

// record appends a completed event to its shard ring, dropping (and
// counting) it when the ring is full.
func (t *Tracer) record(e Event) {
	s := &t.shards[e.Span%uint64(len(t.shards))]
	s.mu.Lock()
	if len(s.buf) >= t.cap {
		s.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	s.buf = append(s.buf, e)
	s.mu.Unlock()
}

// Flush drains every shard and hands the completed events, sorted by
// begin sequence, to the sink. Call it at run boundaries — after a
// sweep task, a tune trial, an HTTP request — so rings stay small and
// the journal stays roughly chronological.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	evs := t.scratch[:0]
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		evs = append(evs, s.buf...)
		s.buf = s.buf[:0]
		s.mu.Unlock()
	}
	if len(evs) == 0 {
		t.scratch = evs
		return
	}
	sortEvents(evs)
	t.sink.Write(evs)
	t.scratch = evs
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.Flush()
	return t.sink.Close()
}

// sortEvents orders by BeginSeq (insertion sort over the typical
// near-sorted flush; flushes are boundary-sized, not unbounded).
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].BeginSeq < evs[j-1].BeginSeq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// Ctx is a span site's handle: the tracer plus the identity of the
// enclosing span. The zero Ctx is "tracing disabled" — every method is
// a nil check and a return, which is the entire disabled-path cost.
// Ctx values are passed by value through options structs; a Ctx is
// usable from any goroutine.
type Ctx struct {
	tr     *Tracer
	trace  uint64
	span   uint64
	parent uint64
	name   string
	start  int64
	bseq   uint64
	attrs  []Attr
}

// Live reports whether a tracer is attached. Use it to gate attribute
// construction that would otherwise run (and allocate) on the disabled
// path: attrs passed to Attr are evaluated by the caller regardless.
func (c Ctx) Live() bool { return c.tr != nil }

// TraceID returns the trace identity, 0 when disabled.
func (c Ctx) TraceID() uint64 { return c.trace }

// SpanID returns the span identity, 0 when disabled.
func (c Ctx) SpanID() uint64 { return c.span }

// Start opens a child span and returns its Ctx. End it exactly once.
func (c Ctx) Start(name string) Ctx {
	if c.tr == nil {
		return Ctx{}
	}
	t := c.tr
	t.started.Add(1)
	return Ctx{
		tr:     t,
		trace:  c.trace,
		span:   t.ids.Add(1),
		parent: c.span,
		name:   name,
		start:  t.now(),
		bseq:   t.seq.Add(1),
	}
}

// Attr annotates the span, returning the annotated Ctx. Call between
// Start and End, on the value End will be called on. Guard expensive
// value construction with Live.
func (c Ctx) Attr(key, val string) Ctx {
	if c.tr == nil {
		return c
	}
	c.attrs = append(c.attrs, Attr{Key: key, Val: val})
	return c
}

// End closes the span, recording it into the tracer's rings.
func (c Ctx) End() {
	if c.tr == nil {
		return
	}
	t := c.tr
	t.finished.Add(1)
	t.record(Event{
		Trace:    c.trace,
		Span:     c.span,
		Parent:   c.parent,
		Name:     c.name,
		Start:    c.start,
		Dur:      t.now() - c.start,
		Attrs:    c.attrs,
		BeginSeq: c.bseq,
		EndSeq:   t.seq.Add(1),
	})
}

// Point records an instant event under this span (a retry, a
// quarantine decision, a reclaim) with no duration.
func (c Ctx) Point(name string) { c.PointAttr(name, "", "") }

// PointAttr is Point with one attribute; an empty key attaches none.
func (c Ctx) PointAttr(name, key, val string) {
	if c.tr == nil {
		return
	}
	t := c.tr
	t.points.Add(1)
	var attrs []Attr
	if key != "" {
		attrs = []Attr{{Key: key, Val: val}}
	}
	seq := t.seq.Add(1)
	t.record(Event{
		Trace:    c.trace,
		Span:     t.ids.Add(1),
		Parent:   c.span,
		Name:     name,
		Start:    t.now(),
		Point:    true,
		Attrs:    attrs,
		BeginSeq: seq,
		EndSeq:   seq,
	})
}

// Flush drains the attached tracer's rings to its sink; a disabled Ctx
// does nothing. Run boundaries call this so every completed span of
// the run reaches the journal before the next run starts.
func (c Ctx) Flush() {
	if c.tr == nil {
		return
	}
	c.tr.Flush()
}
