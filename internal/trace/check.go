package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JournalStats summarizes a validated trace journal.
type JournalStats struct {
	Lines  int // journal lines read
	Spans  int // balanced b/e pairs
	Points int // instant events
	Traces int // distinct trace ids
}

// journalLine is the parse form of one JSONL journal record, the
// reader-side mirror of the sink's hand-rendered wire format.
type journalLine struct {
	Ev     string            `json:"ev"` // "b", "e", or "p"
	Seq    uint64            `json:"seq"`
	Trace  uint64            `json:"trace"`
	Span   uint64            `json:"span"`
	Parent uint64            `json:"parent"`
	Name   string            `json:"name"`
	T      int64             `json:"t"` // ns on the tracer's monotonic clock
	Dur    int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs"`
}

// CheckJournal validates a JSONL trace journal: every line parses,
// every "e" closes a span opened by a prior "b" of the same trace,
// span ids are never reopened, and at EOF every opened span is closed.
// It is the CI observability gate (cmd/tracecheck) and the structural
// contract of the JSONL sink.
func CheckJournal(r io.Reader) (JournalStats, error) {
	var st JournalStats
	open := make(map[uint64]uint64) // span id -> trace id
	closed := make(map[uint64]bool)
	traces := make(map[uint64]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		st.Lines++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return st, fmt.Errorf("line %d: empty line", st.Lines)
		}
		var l journalLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return st, fmt.Errorf("line %d: bad JSON: %v", st.Lines, err)
		}
		if l.Trace == 0 || l.Span == 0 {
			return st, fmt.Errorf("line %d: missing trace/span id", st.Lines)
		}
		traces[l.Trace] = true
		switch l.Ev {
		case "b":
			if l.Name == "" {
				return st, fmt.Errorf("line %d: span %d opened without a name", st.Lines, l.Span)
			}
			if _, dup := open[l.Span]; dup || closed[l.Span] {
				return st, fmt.Errorf("line %d: span %d opened twice", st.Lines, l.Span)
			}
			open[l.Span] = l.Trace
		case "e":
			tr, ok := open[l.Span]
			if !ok {
				return st, fmt.Errorf("line %d: close of span %d, which is not open", st.Lines, l.Span)
			}
			if tr != l.Trace {
				return st, fmt.Errorf("line %d: span %d closed under trace %d, opened under %d",
					st.Lines, l.Span, l.Trace, tr)
			}
			delete(open, l.Span)
			closed[l.Span] = true
			st.Spans++
		case "p":
			if l.Name == "" {
				return st, fmt.Errorf("line %d: point without a name", st.Lines)
			}
			st.Points++
		default:
			return st, fmt.Errorf("line %d: unknown event kind %q", st.Lines, l.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if len(open) > 0 {
		for span, tr := range open {
			return st, fmt.Errorf("unbalanced journal: span %d of trace %d opened but never closed (%d open at EOF)",
				span, tr, len(open))
		}
	}
	st.Traces = len(traces)
	return st, nil
}
