package trace

import "os"

// OpenJournal creates (truncating) a JSONL trace journal at path and
// returns a Tracer writing to it — the CLI wiring behind the -trace
// flags of indigo2 run/tune and the experiments driver. Close the
// tracer when the program is done: it flushes the rings and the file.
// An empty path returns a nil Tracer (every derived Ctx is the inert
// zero value), so callers can thread the flag through unconditionally.
func OpenJournal(path string) (*Tracer, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return New(Config{Sink: NewJSONLSink(f)}), nil
}

// Root opens a root trace on t, or returns the inert zero Ctx when t is
// nil — pairs with OpenJournal's nil-on-empty-path contract.
func (t *Tracer) Root(name string) Ctx {
	if t == nil {
		return Ctx{}
	}
	return t.NewTrace(name)
}
