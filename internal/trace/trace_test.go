package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// collect is a test sink capturing every flushed event.
type collect struct {
	mu  sync.Mutex
	evs []Event
}

func (c *collect) Write(events []Event) {
	c.mu.Lock()
	c.evs = append(c.evs, events...)
	c.mu.Unlock()
}
func (c *collect) Close() error { return nil }

func TestSpanTreeAndCounters(t *testing.T) {
	sink := &collect{}
	tr := New(Config{Sink: sink})
	root := tr.NewTrace("session")
	child := root.Start("work").Attr("variant", "x")
	child.Point("retry")
	grand := child.Start("kernel")
	grand.End()
	child.End()
	root.End()
	tr.Flush()

	if got := tr.Counters(); got.Started != 3 || got.Finished != 3 || got.Points != 1 || got.Dropped != 0 {
		t.Fatalf("counters = %+v, want 3 started, 3 finished, 1 point", got)
	}
	if len(sink.evs) != 4 {
		t.Fatalf("flushed %d events, want 4 (3 spans + 1 point)", len(sink.evs))
	}
	byName := map[string]Event{}
	for _, e := range sink.evs {
		byName[e.Name] = e
		if e.Trace != root.TraceID() {
			t.Errorf("%s: trace id %d, want %d", e.Name, e.Trace, root.TraceID())
		}
	}
	if byName["work"].Parent != byName["session"].Span {
		t.Errorf("work's parent = %d, want session span %d", byName["work"].Parent, byName["session"].Span)
	}
	if byName["kernel"].Parent != byName["work"].Span {
		t.Errorf("kernel's parent = %d, want work span %d", byName["kernel"].Parent, byName["work"].Span)
	}
	if byName["retry"].Parent != byName["work"].Span || !byName["retry"].Point {
		t.Errorf("retry point misfiled: %+v", byName["retry"])
	}
	if len(byName["work"].Attrs) != 1 || byName["work"].Attrs[0] != (Attr{"variant", "x"}) {
		t.Errorf("work attrs = %v", byName["work"].Attrs)
	}
	// Parent opens before child, child closes before parent.
	if !(byName["session"].BeginSeq < byName["work"].BeginSeq &&
		byName["work"].BeginSeq < byName["kernel"].BeginSeq) {
		t.Error("begin sequence is not parent-before-child")
	}
	if !(byName["kernel"].EndSeq < byName["work"].EndSeq &&
		byName["work"].EndSeq < byName["session"].EndSeq) {
		t.Error("end sequence is not child-before-parent")
	}
	if byName["kernel"].Dur < 0 || byName["kernel"].Start < byName["work"].Start {
		t.Error("child starts before parent on the monotonic clock")
	}
}

// TestDisabledCtxIsInert pins the off-by-default contract: the zero
// Ctx records nothing, reaches no tracer, and allocates nothing.
func TestDisabledCtxIsInert(t *testing.T) {
	var c Ctx
	if c.Live() {
		t.Fatal("zero Ctx claims to be live")
	}
	n := testing.AllocsPerRun(100, func() {
		sp := c.Start("x")
		sp = sp.Attr("k", "v")
		sp.Point("p")
		sp.End()
		sp.Flush()
	})
	if n != 0 {
		t.Fatalf("disabled span site allocates %.1f times, want 0", n)
	}
}

func TestRingOverflowDropsWholeSpans(t *testing.T) {
	sink := &collect{}
	tr := New(Config{Sink: sink, Capacity: 2, Shards: 1})
	root := tr.NewTrace("root")
	for i := 0; i < 5; i++ {
		root.Start("s").End()
	}
	root.End()
	tr.Flush()
	c := tr.Counters()
	if c.Dropped != 4 { // 5 children + root = 6 completed, ring holds 2
		t.Fatalf("dropped = %d, want 4", c.Dropped)
	}
	if len(sink.evs) != 2 {
		t.Fatalf("flushed %d events, want 2", len(sink.evs))
	}
}

func TestJSONLRoundTripBalanced(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(Config{Sink: sink})
	root := tr.NewTrace("run")
	a := root.Start("phase-a").Attr("n", "7")
	a.PointAttr("mark", "k", "v")
	a.End()
	b := root.Start("phase-b")
	b.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := CheckJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal does not validate: %v\n%s", err, buf.String())
	}
	if st.Spans != 3 || st.Points != 1 || st.Traces != 1 {
		t.Fatalf("stats = %+v, want 3 spans, 1 point, 1 trace", st)
	}
	if st.Lines != 7 { // 3 spans x (b+e) + 1 point
		t.Fatalf("lines = %d, want 7", st.Lines)
	}
	// The root's open must be the first line and its close the last.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"ev":"b"`) || !strings.Contains(lines[0], `"name":"run"`) {
		t.Errorf("first line is not the root open: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"ev":"e"`) {
		t.Errorf("last line is not a close: %s", lines[len(lines)-1])
	}
}

func TestCheckJournalRejectsImbalance(t *testing.T) {
	for name, journal := range map[string]string{
		"unclosed":   `{"ev":"b","seq":1,"trace":1,"span":1,"name":"x","t":0}`,
		"unopened":   `{"ev":"e","seq":1,"trace":1,"span":1,"t":0}`,
		"reopened":   "{\"ev\":\"b\",\"seq\":1,\"trace\":1,\"span\":1,\"name\":\"x\",\"t\":0}\n{\"ev\":\"e\",\"seq\":2,\"trace\":1,\"span\":1,\"t\":1}\n{\"ev\":\"b\",\"seq\":3,\"trace\":1,\"span\":1,\"name\":\"x\",\"t\":2}\n{\"ev\":\"e\",\"seq\":4,\"trace\":1,\"span\":1,\"t\":3}",
		"badjson":    `{"ev":`,
		"wrongtrace": "{\"ev\":\"b\",\"seq\":1,\"trace\":1,\"span\":1,\"name\":\"x\",\"t\":0}\n{\"ev\":\"e\",\"seq\":2,\"trace\":2,\"span\":1,\"t\":1}",
	} {
		if _, err := CheckJournal(strings.NewReader(journal)); err == nil {
			t.Errorf("%s journal validated, want error", name)
		}
	}
}

func TestMemSinkRetentionAndEviction(t *testing.T) {
	m := NewMemSink(2, 3)
	tr := New(Config{Sink: m})
	var roots []Ctx
	for i := 0; i < 3; i++ {
		root := tr.NewTrace("r")
		for j := 0; j < 5; j++ {
			root.Start("s").End()
		}
		root.End()
		tr.Flush()
		roots = append(roots, root)
	}
	if m.Len() != 2 {
		t.Fatalf("retained %d traces, want 2", m.Len())
	}
	if _, _, ok := m.Trace(roots[0].TraceID()); ok {
		t.Error("oldest trace was not evicted")
	}
	evs, truncated, ok := m.Trace(roots[2].TraceID())
	if !ok || len(evs) != 3 || truncated != 3 {
		t.Fatalf("newest trace: ok=%v len=%d truncated=%d, want 3 kept + 3 truncated", ok, len(evs), truncated)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].BeginSeq < evs[i-1].BeginSeq {
			t.Fatal("trace events not ordered by begin sequence")
		}
	}
}

// TestConcurrentSpansRace exercises concurrent span recording and
// flushing under -race.
func TestConcurrentSpansRace(t *testing.T) {
	sink := &collect{}
	tr := New(Config{Sink: sink, Capacity: 1 << 14})
	root := tr.NewTrace("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Start("work")
				sp.Point("tick")
				sp.End()
				if i%50 == 0 {
					tr.Flush()
				}
			}
		}()
	}
	wg.Wait()
	root.End()
	tr.Flush()
	c := tr.Counters()
	if c.Started != c.Finished {
		t.Fatalf("started %d != finished %d", c.Started, c.Finished)
	}
	if int64(len(sink.evs))+c.Dropped != c.Finished+c.Points {
		t.Fatalf("flushed %d + dropped %d != finished %d + points %d",
			len(sink.evs), c.Dropped, c.Finished, c.Points)
	}
}
