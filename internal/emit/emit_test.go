package emit

import (
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// TestEveryCPUSSSPVariantEmitsValidGo generates all 52 CPU SSSP
// programs and syntax-checks each with go/parser, mirroring the suite's
// generated-source nature.
func TestEveryCPUSSSPVariantEmitsValidGo(t *testing.T) {
	count := 0
	for _, model := range []styles.Model{styles.OMP, styles.CPP} {
		for _, cfg := range styles.Enumerate(styles.SSSP, model) {
			src, err := Program(cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, cfg.Name()+".go", src, 0); err != nil {
				t.Errorf("%s: generated code does not parse: %v", cfg.Name(), err)
			}
			if _, err := format.Source([]byte(src)); err != nil {
				t.Errorf("%s: generated code does not format: %v", cfg.Name(), err)
			}
			if !strings.Contains(src, "Code generated") || !strings.Contains(src, cfg.Name()) {
				t.Errorf("%s: missing generation header", cfg.Name())
			}
			count++
		}
	}
	if count != 52 {
		t.Errorf("emitted %d variants, want 52", count)
	}
}

func TestEmitRejectsUnsupported(t *testing.T) {
	cases := []styles.Config{
		{Algo: styles.BFS, Model: styles.OMP},
		{Algo: styles.SSSP, Model: styles.CUDA},
		{Algo: styles.SSSP, Model: styles.OMP, Iterate: styles.EdgeBased, Flow: styles.Pull}, // invalid combo
	}
	for _, cfg := range cases {
		if _, err := Program(cfg); err == nil {
			t.Errorf("Program(%s) succeeded, want error", cfg.Name())
		}
	}
}

// TestEmittedProgramRuns compiles and executes two generated variants
// on a real input and checks their self-verification. Skipped in -short
// mode (it shells out to the go tool).
func TestEmittedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run integration in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	dir := t.TempDir()
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	grPath := filepath.Join(dir, "road.gr")
	f, err := os.Create(grPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	variants := []styles.Config{
		{Algo: styles.SSSP, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
			Flow: styles.Push, Update: styles.ReadModifyWrite, CPPSched: styles.CyclicSched},
		{Algo: styles.SSSP, Model: styles.OMP, Det: styles.Deterministic,
			Update: styles.ReadModifyWrite, Flow: styles.Pull, OMPSched: styles.DynamicSched},
	}
	for i, cfg := range variants {
		src, err := Program(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srcPath := filepath.Join(dir, "sssp"+string(rune('a'+i))+".go")
		if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "run", srcPath, grPath)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: go run failed: %v\n%s", cfg.Name(), err, out)
		}
		if !strings.Contains(string(out), "verified: ok") {
			t.Errorf("%s: output missing verification: %s", cfg.Name(), out)
		}
	}
}
