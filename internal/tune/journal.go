package tune

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// The tune journal is a JSONL stream of the session's decisions in the
// exact order they were made. Because the tuner's schedule is a pure
// function of its options and the recorded trial results — no wall
// clock or unseeded randomness enters any decision — replaying the
// trial events of a journal reproduces every later event byte for
// byte. That is the determinism contract the resume path leans on:
// -resume reads the old journal, queues its trial results per variant,
// truncates the file, and re-emits the stream, consuming a queued
// result instead of running the kernel whenever the schedule asks for
// a trial the journal already holds. An interrupted session therefore
// continues where it died, and a completed session replayed under the
// same options rewrites an identical file.

// journalVersion gates the format; a bump invalidates old journals
// instead of misreading them.
const journalVersion = 1

// evPlan opens every journal: the resolved session shape. Resume
// refuses a journal whose plan does not match the current options,
// because replaying trials into a different schedule would silently
// corrupt the race.
type evPlan struct {
	Ev       string  `json:"ev"`
	V        int     `json:"v"`
	Algo     string  `json:"algo"`
	Model    string  `json:"model"`
	Device   string  `json:"device"`
	Space    int     `json:"space"`
	Budget   int     `json:"budget"`
	Cohort   int     `json:"cohort"`
	Pilot    int     `json:"pilot"`
	Escalate int     `json:"escalate"`
	Keep     float64 `json:"keep"`
	Seed     int64   `json:"seed"`
}

// evCand records a variant entering the session and its origin.
type evCand struct {
	Ev     string `json:"ev"`
	Name   string `json:"name"`
	Origin string `json:"origin"`
}

// evRung opens a racing rung.
type evRung struct {
	Ev    string `json:"ev"`
	Rung  int    `json:"rung"`
	Alive int    `json:"alive"`
	Reps  int    `json:"reps"`
}

// evTrial records one timed run. Rung is -1 for refinement trials.
type evTrial struct {
	Ev   string  `json:"ev"`
	Rung int     `json:"rung"`
	Name string  `json:"name"`
	Rep  int     `json:"rep"`
	Tput float64 `json:"tput"`
	OK   bool    `json:"ok"`
	Err  string  `json:"err,omitempty"`
}

// evElim records a candidate cut at the end of a rung.
type evElim struct {
	Ev     string  `json:"ev"`
	Rung   int     `json:"rung"`
	Name   string  `json:"name"`
	Score  float64 `json:"score"`
	Median float64 `json:"median"`
	Failed bool    `json:"failed"`
}

// evImprove records a refinement mutation beating the incumbent.
type evImprove struct {
	Ev   string  `json:"ev"`
	Name string  `json:"name"`
	Dim  string  `json:"dim"`
	Tput float64 `json:"tput"`
}

// evWinner closes the journal. Trials counts fresh and replayed runs
// uniformly — the journal records the deterministic schedule, and how
// many of its trials happened to be replays is a property of this
// process, not of the schedule (splitting them would break the
// byte-identical replay contract).
type evWinner struct {
	Ev      string  `json:"ev"`
	Name    string  `json:"name"`
	Tput    float64 `json:"tput"`
	Trials  int     `json:"trials"`
	Rungs   int     `json:"rungs"`
	Partial bool    `json:"partial"`
	Reason  string  `json:"reason,omitempty"`
}

// journal writes events as JSONL, flushing per event so a killed
// session loses at most the trial in flight.
type journal struct {
	f *os.File
	w *bufio.Writer
}

func openJournal(path string) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tune: journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// write appends one event. Marshaling is deterministic (struct fields
// in declaration order, shortest float rendering), which is what makes
// same-seed journals byte-comparable.
func (j *journal) write(ev any) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	return j.w.Flush()
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// replayState is a prior journal's trial results queued per variant
// name, consumed FIFO as the deterministic schedule re-requests them.
type replayState struct {
	plan   *evPlan
	trials map[string][]evTrial
}

// loadJournal parses an existing journal for resume. A missing file is
// a fresh start, not an error. Unknown event kinds are skipped so a
// newer writer's journal degrades instead of failing; a version
// mismatch on the plan line is an error.
func loadJournal(path string) (*replayState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &replayState{trials: map[string][]evTrial{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tune: resume: %w", err)
	}
	defer f.Close()
	st := &replayState{trials: map[string][]evTrial{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			// A torn final line from a killed session is expected;
			// everything before it replays.
			continue
		}
		switch probe.Ev {
		case "plan":
			var p evPlan
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("tune: resume: bad plan line: %w", err)
			}
			if p.V != journalVersion {
				return nil, fmt.Errorf("tune: resume: journal version %d, want %d", p.V, journalVersion)
			}
			st.plan = &p
		case "trial":
			var t evTrial
			if err := json.Unmarshal(line, &t); err != nil {
				continue
			}
			st.trials[t.Name] = append(st.trials[t.Name], t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tune: resume: %w", err)
	}
	return st, nil
}

// matches reports whether a resumed journal's plan is compatible with
// the current session's plan (same cell, same schedule parameters).
func (st *replayState) matches(p evPlan) error {
	old := st.plan
	if old == nil {
		return nil // journal died before its plan line; nothing to replay anyway
	}
	if old.Algo != p.Algo || old.Model != p.Model || old.Device != p.Device ||
		old.Space != p.Space || old.Budget != p.Budget || old.Cohort != p.Cohort ||
		old.Pilot != p.Pilot || old.Escalate != p.Escalate || old.Keep != p.Keep ||
		old.Seed != p.Seed {
		return fmt.Errorf("tune: resume: journal was written for %s/%s on %s (space %d, budget %d, cohort %d, seed %d); current options differ",
			old.Algo, old.Model, old.Device, old.Space, old.Budget, old.Cohort, old.Seed)
	}
	return nil
}

// next pops the queued result for name, if any.
func (st *replayState) next(name string) (evTrial, bool) {
	if st == nil {
		return evTrial{}, false
	}
	q := st.trials[name]
	if len(q) == 0 {
		return evTrial{}, false
	}
	st.trials[name] = q[1:]
	return q[0], true
}
