package tune

import (
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/testutil"
)

// TestSmokeBeatsTheBar is the acceptance bar on a real cell: tune
// bfs/cuda on a generated tiny graph through the production
// ProbeRunner, then exhaustively measure the same cell and assert the
// tuner landed within 5% of the sweep best using at most 25% of its
// measurements. The GPU simulator's timing model is deterministic, so
// the assertion is stable; Escalate is 1 because repeating a
// deterministic measurement buys nothing.
func TestSmokeBeatsTheBar(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	g := gen.Generate(gen.InputRMAT, gen.Tiny)
	ropt := algo.Options{Threads: 2}
	sopt := sweep.Options{Timeout: 10 * time.Second, Verify: true}

	pr := NewProbeRunner(g, "rtx-sim", ropt, sopt)
	opt := Options{
		Algo:     styles.BFS,
		Model:    styles.CUDA,
		Device:   "rtx-sim",
		Shape:    g.Stats(),
		Seed:     1,
		Escalate: 1,
		Runner:   pr,
	}
	res, err := Run(opt)
	pr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %s", res.PartialReason)
	}

	space := styles.Enumerate(styles.BFS, styles.CUDA)
	if res.Measurements*4 > len(space) {
		t.Fatalf("tuner spent %d measurements; the bar is 25%% of the %d-variant sweep",
			res.Measurements, len(space))
	}

	// Exhaustive reference: the full-cell sweep the tuner is meant to
	// approximate at a quarter of the cost.
	ref := NewProbeRunner(g, "rtx-sim", ropt, sopt)
	defer ref.Close()
	best := 0.0
	bestName := ""
	for _, cfg := range space {
		tput, err := ref.Measure(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if tput > best {
			best, bestName = tput, cfg.Name()
		}
	}
	regret := (best - res.Tput) / best
	t.Logf("tuned %s = %.1f in %d trials; sweep best %s = %.1f (%d trials); regret %.2f%%",
		res.Best.Name(), res.Tput, res.Measurements, bestName, best, len(space), 100*regret)
	if regret > 0.05 {
		t.Fatalf("regret %.2f%% exceeds the 5%% bar (tuned %.1f, sweep best %.1f)",
			100*regret, res.Tput, best)
	}
}

// TestSmokeCPUCell runs the tuner end to end on a CPU cell (omp) to
// cover the TimeCPU measurement path; wall-clock timing is noisy, so
// only structural properties are asserted.
func TestSmokeCPUCell(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	pr := NewProbeRunner(g, sweep.DeviceCPU, algo.Options{Threads: 2},
		sweep.Options{Timeout: 10 * time.Second, Verify: true})
	defer pr.Close()
	res, err := Run(Options{
		Algo:   styles.SSSP,
		Model:  styles.OMP,
		Device: sweep.DeviceCPU,
		Shape:  g.Stats(),
		Seed:   1,
		Runner: pr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("partial result: %s", res.PartialReason)
	}
	if res.Tput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	space := len(styles.Enumerate(styles.SSSP, styles.OMP))
	if res.Measurements > space {
		t.Fatalf("spent %d measurements on a %d-variant space", res.Measurements, space)
	}
}
