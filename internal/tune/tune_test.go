package tune

import (
	"bytes"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indigo/internal/guard"
	"indigo/internal/styles"
	"indigo/internal/testutil"
)

// synthTput is a deterministic synthetic cost model: a stable
// pseudo-random throughput in [1, 2) derived from the variant name.
// It gives every test the same rugged-but-fixed performance landscape
// without running kernels.
func synthTput(cfg styles.Config) float64 {
	h := fnv.New64a()
	h.Write([]byte(cfg.Name()))
	return 1 + float64(h.Sum64()%1000)/1000
}

func synthRunner() Runner {
	return RunnerFunc(func(cfg styles.Config) (float64, error) {
		return synthTput(cfg), nil
	})
}

// synthOptions is the shared base: bfs/cuda (132 variants, the largest
// cell), tiny-ish shape, synthetic runner.
func synthOptions() Options {
	return Options{
		Algo:   styles.BFS,
		Model:  styles.CUDA,
		Device: "rtx-sim",
		Seed:   7,
		Runner: synthRunner(),
	}
}

func TestRunFindsAVariant(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	res, err := Run(synthOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("unexpected partial result: %s", res.PartialReason)
	}
	if res.Tput < 1 {
		t.Fatalf("winner has no throughput: %+v", res)
	}
	space := len(styles.Enumerate(styles.BFS, styles.CUDA))
	if res.Space != space {
		t.Fatalf("Space = %d, want %d", res.Space, space)
	}
	if res.Measurements > space/4 {
		t.Fatalf("spent %d measurements, budget was %d", res.Measurements, space/4)
	}
	if !styles.Valid(res.Best) {
		t.Fatalf("winner %s is not a valid variant", res.Best.Name())
	}
	if len(res.Rationale) == 0 {
		t.Fatal("no rationale")
	}
}

// TestSameSeedIdenticalJournals is the determinism acceptance bar: two
// sessions with the same options write byte-identical journals.
func TestSameSeedIdenticalJournals(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")}
	for _, p := range paths {
		opt := synthOptions()
		opt.Journal = p
		if _, err := Run(opt); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("same-seed journals differ (%d vs %d bytes)", len(a), len(b))
	}
	// A different seed must change the cohort fill — and hence the file.
	opt := synthOptions()
	opt.Seed = 8
	opt.Journal = filepath.Join(dir, "c.jsonl")
	if _, err := Run(opt); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(opt.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical journals")
	}
}

// TestResumeReplaysBitIdentically re-runs a completed session with
// -resume and a runner that must never fire: every trial comes from the
// journal, and the rewritten file equals the original byte for byte.
func TestResumeReplaysBitIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	opt := synthOptions()
	opt.Journal = path
	first, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	opt.Resume = true
	opt.Runner = RunnerFunc(func(cfg styles.Config) (float64, error) {
		t.Errorf("runner invoked for %s during a full replay", cfg.Name())
		return 0, errors.New("no fresh measurements allowed")
	})
	second, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, replayed) {
		t.Fatalf("resumed journal differs from original (%d vs %d bytes)", len(orig), len(replayed))
	}
	if second.Measurements != 0 {
		t.Fatalf("resume ran %d fresh measurements", second.Measurements)
	}
	if second.Replayed != first.Measurements {
		t.Fatalf("replayed %d trials, original ran %d", second.Replayed, first.Measurements)
	}
	if second.Best != first.Best || second.Tput != first.Tput {
		t.Fatalf("resume crowned %s (%.3f), original %s (%.3f)",
			second.Best.Name(), second.Tput, first.Best.Name(), first.Tput)
	}
}

// TestResumeRejectsMismatchedPlan guards against replaying a journal
// into a different schedule.
func TestResumeRejectsMismatchedPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	opt := synthOptions()
	opt.Journal = path
	if _, err := Run(opt); err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	opt.Seed = 99
	if _, err := Run(opt); err == nil || !strings.Contains(err.Error(), "current options differ") {
		t.Fatalf("mismatched resume error = %v", err)
	}
}

// TestBudgetExhaustionMidRung forces a cohort larger than the budget:
// the race cannot finish rung 0, and the session returns best-so-far
// with the partial flag.
func TestBudgetExhaustionMidRung(t *testing.T) {
	opt := synthOptions()
	opt.Cohort = 8
	opt.MaxMeasurements = 5
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected a partial result")
	}
	if !strings.Contains(res.PartialReason, "budget") {
		t.Fatalf("PartialReason = %q", res.PartialReason)
	}
	if res.Measurements != 5 {
		t.Fatalf("spent %d measurements, cap was 5", res.Measurements)
	}
	if res.Rungs != 0 {
		t.Fatalf("completed %d rungs inside a 5-trial budget", res.Rungs)
	}
	if res.Tput < 1 {
		t.Fatalf("best-so-far has no throughput: %+v", res)
	}
}

// TestCohortOfOneShortCircuits: a forced cohort of one skips the race
// entirely — no rungs, one measurement, that candidate crowned.
func TestCohortOfOneShortCircuits(t *testing.T) {
	opt := synthOptions()
	opt.Cohort = 1
	opt.MaxMeasurements = 1
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rungs != 0 {
		t.Fatalf("ran %d rungs with a cohort of one", res.Rungs)
	}
	if res.Measurements != 1 {
		t.Fatalf("spent %d measurements, want 1", res.Measurements)
	}
	if res.Partial {
		t.Fatalf("unexpected partial result: %s", res.PartialReason)
	}
	if res.Tput != synthTput(res.Best) {
		t.Fatalf("winner throughput %v does not match its measurement %v", res.Tput, synthTput(res.Best))
	}
}

// TestFailingVariantEliminatedNotCrowned poisons the synthetic
// landscape's global best: the tuner must crown someone else.
func TestFailingVariantEliminatedNotCrowned(t *testing.T) {
	space := styles.Enumerate(styles.BFS, styles.CUDA)
	bestName := ""
	best := 0.0
	for _, cfg := range space {
		if v := synthTput(cfg); v > best {
			best, bestName = v, cfg.Name()
		}
	}
	opt := synthOptions()
	opt.Runner = RunnerFunc(func(cfg styles.Config) (float64, error) {
		if cfg.Name() == bestName {
			return 0, errors.New("wrong answer: poisoned variant")
		}
		return synthTput(cfg), nil
	})
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Name() == bestName {
		t.Fatalf("crowned the failing variant %s", bestName)
	}
	if res.Tput < 1 {
		t.Fatalf("winner has no throughput: %+v", res)
	}
}

// TestAllFailingIsAnError: when every candidate fails, the session
// reports an error instead of crowning garbage.
func TestAllFailingIsAnError(t *testing.T) {
	opt := synthOptions()
	opt.Runner = RunnerFunc(func(styles.Config) (float64, error) {
		return 0, errors.New("panic: broken kernel")
	})
	if _, err := Run(opt); err == nil || !strings.Contains(err.Error(), "every candidate failed") {
		t.Fatalf("all-failing error = %v", err)
	}
}

// TestGuardStopsSession cancels the session token mid-race and expects
// a partial best-so-far charged to the session, not to a variant.
func TestGuardStopsSession(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	gd := guard.New()
	defer gd.Release()
	n := 0
	opt := synthOptions()
	opt.Guard = gd
	opt.Runner = RunnerFunc(func(cfg styles.Config) (float64, error) {
		n++
		if n == 3 {
			gd.Cancel()
		}
		return synthTput(cfg), nil
	})
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !strings.Contains(res.PartialReason, "canceled") {
		t.Fatalf("partial=%v reason=%q", res.Partial, res.PartialReason)
	}
	if res.Measurements > 3 {
		t.Fatalf("ran %d measurements after the cancel landed", res.Measurements)
	}
	if res.Tput < 1 {
		t.Fatalf("best-so-far has no throughput: %+v", res)
	}
}

// TestObserverSeesTheSession wires every hook and cross-checks the
// stream against the result.
func TestObserverSeesTheSession(t *testing.T) {
	var trials, elims, cands, rungs int
	var winnerName string
	opt := synthOptions()
	opt.Observer = &Observer{
		Plan:       func(space, budget, cohort int) {},
		Candidate:  func(name, origin string) { cands++ },
		RungStart:  func(rung, alive, reps int) { rungs++ },
		Trial:      func(rung int, name string, rep int, tput float64, ok, replayed bool) { trials++ },
		Eliminated: func(rung int, name string, score, median float64) { elims++ },
		Improved:   func(name, dim string, tput float64) {},
		Winner:     func(name string, tput float64, spent int, partial bool) { winnerName = name },
	}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if trials != res.Measurements {
		t.Fatalf("observer saw %d trials, result says %d", trials, res.Measurements)
	}
	if rungs != res.Rungs {
		t.Fatalf("observer saw %d rungs, result says %d", rungs, res.Rungs)
	}
	if winnerName != res.Best.Name() {
		t.Fatalf("observer winner %q, result %q", winnerName, res.Best.Name())
	}
	if cands == 0 || elims == 0 {
		t.Fatalf("observer saw %d candidates, %d eliminations", cands, elims)
	}
}

// TestRunnerRequired pins the one non-optional field.
func TestRunnerRequired(t *testing.T) {
	opt := synthOptions()
	opt.Runner = nil
	if _, err := Run(opt); err == nil {
		t.Fatal("Run accepted a nil Runner")
	}
}
