package tune

import (
	"fmt"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/trace"
)

// ProbeRunner is the production Runner: each Measure is one supervised
// attempt through sweep.Prober — per-run deadline and memory budget via
// a guard token, panic isolation, abandon-and-replace for wedged runs,
// and optional verification against the cached serial reference. Wire
// the tuning session's guard token into opt.Outer so a session
// deadline or cancel stops the trial in flight, not after it.
type ProbeRunner struct {
	p      *sweep.Prober
	g      *graph.Graph
	device string
}

// NewProbeRunner builds a runner that measures variants on g on the
// given device ("cpu" or a gpusim profile name). ropt carries thread
// count and per-run options; opt carries Timeout/ReclaimGrace/
// MemBudget/Verify/Outer (the rest is sweep-only and ignored).
func NewProbeRunner(g *graph.Graph, device string, ropt algo.Options, opt sweep.Options) *ProbeRunner {
	return &ProbeRunner{p: sweep.NewProber(ropt, opt), g: g, device: device}
}

// SetTrace implements TraceSetter: subsequent probes record their
// supervised attempts under tc (the tuner passes each trial's span).
func (r *ProbeRunner) SetTrace(tc trace.Ctx) { r.p.SetTrace(tc) }

// Measure runs cfg once and returns its throughput, or an error
// carrying the sweep classification (timeout, panic, wrong answer,
// error) — the tuner eliminates the variant on any of them.
func (r *ProbeRunner) Measure(cfg styles.Config) (float64, error) {
	o := r.p.Probe(r.g, cfg, r.device)
	if o.Kind != sweep.OK {
		return 0, fmt.Errorf("%s: %s", o.Kind, o.Err)
	}
	return o.Tput, nil
}

// Close releases the prober's worker pool, arena, and devices.
func (r *ProbeRunner) Close() { r.p.Close() }
