package tune

// Observer streams a tuning session's progress: the plan, every
// candidate entering the race, each rung's start, every trial (fresh or
// replayed), each elimination, each refinement improvement, and the
// winner. All fields are optional; a nil Observer or a nil field is
// skipped. Callbacks run synchronously on the tuning goroutine, in the
// deterministic event order the journal records, so an observer that
// prints sees exactly what a journal reader would.
type Observer struct {
	// Plan reports the resolved session shape before any trial runs.
	Plan func(space, budget, cohort int)
	// Candidate reports a variant entering the session and where it
	// came from ("advisor", "store", "store-shape", "mutate:<dim>",
	// "fill", "refine:<dim>").
	Candidate func(name, origin string)
	// RungStart reports a racing rung: how many candidates are alive
	// and how many timed reps each gets this rung.
	RungStart func(rung, alive, reps int)
	// Trial reports one timed run (or its journal replay).
	Trial func(rung int, name string, rep int, tput float64, ok bool, replayed bool)
	// Eliminated reports a candidate cut at the end of a rung, with its
	// score and the rung median it was measured against.
	Eliminated func(rung int, name string, score, median float64)
	// Improved reports a refinement-phase mutation beating the
	// incumbent.
	Improved func(name, dim string, tput float64)
	// Winner reports the final choice and the total trials spent
	// (fresh + replayed).
	Winner func(name string, tput float64, spent int, partial bool)
}

func (o *Observer) plan(space, budget, cohort int) {
	if o != nil && o.Plan != nil {
		o.Plan(space, budget, cohort)
	}
}

func (o *Observer) candidate(name, origin string) {
	if o != nil && o.Candidate != nil {
		o.Candidate(name, origin)
	}
}

func (o *Observer) rungStart(rung, alive, reps int) {
	if o != nil && o.RungStart != nil {
		o.RungStart(rung, alive, reps)
	}
}

func (o *Observer) trial(rung int, name string, rep int, tput float64, ok, replayed bool) {
	if o != nil && o.Trial != nil {
		o.Trial(rung, name, rep, tput, ok, replayed)
	}
}

func (o *Observer) eliminated(rung int, name string, score, median float64) {
	if o != nil && o.Eliminated != nil {
		o.Eliminated(rung, name, score, median)
	}
}

func (o *Observer) improved(name, dim string, tput float64) {
	if o != nil && o.Improved != nil {
		o.Improved(name, dim, tput)
	}
}

func (o *Observer) winner(name string, tput float64, spent int, partial bool) {
	if o != nil && o.Winner != nil {
		o.Winner(name, tput, spent, partial)
	}
}
