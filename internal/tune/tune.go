// Package tune is the empirical autotuner sitting between the advisor
// and the sweep: where internal/advisor predicts a variant from static
// guidelines and internal/sweep measures every variant exhaustively,
// the tuner finds a near-best variant for a concrete graph with a small
// fraction of the sweep's measurements. The paper's census (§5) shows
// no style wins everywhere — the best of the 850 variants shifts with
// algorithm, model, and input shape — so a production service cannot
// ship one config, and cannot afford a full sweep per input either.
//
// The tuner is a successive-halving race in the style of GraphIt's
// schedule autotuner. It seeds a cohort from the advisor's guideline
// pick, its single-dimension neighborhood, and store-known winners for
// the same input or the nearest graph shapes, then fills the remainder
// with seeded-random draws from the applicable space. Each rung times
// every surviving candidate a few times (throughput score = best of
// the rung's reps, the min-of-k dual), cuts everyone scoring below the
// rung median, and escalates the rep count for the survivors so cheap
// early rungs pay for accurate late ones. Whatever budget the race
// leaves funds a hill-climbing refinement over the winner's
// single-dimension mutations.
//
// Determinism contract: every decision is a pure function of the
// options (including Seed) and the sequence of trial results. No wall
// clock, no map-iteration order, and no unseeded randomness reaches a
// decision or the journal, so on a deterministic runner (the GPU
// simulator's timing model) two runs with the same seed produce
// byte-identical journals — which is also what makes journal resume
// sound (see journal.go).
package tune

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"indigo/internal/advisor"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/store"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// Runner measures one variant once. The tuner owns scheduling and
// failure policy; the runner owns the mechanics of a single timed run.
// Production code uses ProbeRunner; tests substitute synthetic cost
// models.
type Runner interface {
	Measure(cfg styles.Config) (tput float64, err error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(cfg styles.Config) (float64, error)

// Measure implements Runner.
func (f RunnerFunc) Measure(cfg styles.Config) (float64, error) { return f(cfg) }

// Options configures one tuning session. Algo, Model, Device, Shape,
// and Runner are required; everything else has serviceable defaults.
type Options struct {
	// Algo and Model pick the variant space (styles.Enumerate).
	Algo  styles.Algorithm
	Model styles.Model
	// Device labels the measurement target for the journal, the store
	// lookups, and the rationale; the Runner must already be bound to
	// it.
	Device string
	// Shape is the input graph's signature, consumed by the advisor
	// seed and the store's shape-similarity warm start.
	Shape graph.Stats
	// Input, when the graph is a known suite input, keys the store's
	// exact-match warm start and the regret-vs-census report.
	Input string
	// Seed drives the only randomness in the session (cohort fill).
	Seed int64
	// MaxMeasurements caps total trials, fresh plus replayed; 0 means a
	// quarter of the variant space — the budget the acceptance bar is
	// stated against. The cap is hard: the session returns best-so-far
	// with Partial set rather than exceed it.
	MaxMeasurements int
	// Cohort forces the initial cohort size; 0 sizes it adaptively so
	// the race spends about 70% of the budget and refinement the rest.
	Cohort int
	// PilotReps is the rep count of rung 0; 0 means 1.
	PilotReps int
	// Escalate multiplies reps per rung; 0 means 2. Use 1 on
	// deterministic runners, where repetition buys nothing.
	Escalate int
	// KeepFraction caps the survivors of each rung; 0 means 0.5.
	KeepFraction float64
	// Guard, when non-nil, is the session's deadline/cancel token.
	// Checked before every trial; wire it into the runner (e.g.
	// sweep.Options.Outer) so it also stops the trial in flight.
	Guard *guard.Token
	// Store, when non-nil, supplies warm-start candidates and the
	// census baseline for the regret report.
	Store *store.Store
	// Journal is a JSONL path recording the session; empty disables.
	Journal string
	// Resume replays trial results already in Journal instead of
	// re-running them, then rewrites the file as the replayed stream.
	Resume bool
	// Observer streams progress; nil is silent.
	Observer *Observer
	// Runner performs the timed runs.
	Runner Runner
	// Trace, when live, records the session as a tune.session span with
	// tune.rung / tune.refine children, one tune.trial span per
	// measurement, and improve/eliminate points; each trial's spans are
	// flushed as it completes. When the Runner implements TraceSetter
	// (ProbeRunner does), every trial's probe records under its trial
	// span. The zero value disables tracing for free.
	Trace trace.Ctx
}

// TraceSetter is implemented by Runners whose measurements can record
// under the tuner's per-trial spans (sweep.Prober via ProbeRunner).
type TraceSetter interface {
	SetTrace(trace.Ctx)
}

// Result is the tuning session's outcome.
type Result struct {
	// Best is the winning variant and Tput its best measured
	// throughput.
	Best styles.Config
	Tput float64
	// Rationale explains how the winner was found, in the advisor's
	// report style.
	Rationale []string
	// Space is the applicable variant count; Measurements the fresh
	// trials run; Replayed the trials answered from the journal;
	// Rungs the completed racing rungs.
	Space        int
	Measurements int
	Replayed     int
	Rungs        int
	// Partial reports that the session stopped early (budget or guard)
	// and Best is best-so-far, with the reason in PartialReason.
	Partial       bool
	PartialReason string
	// CensusBest is the store's measured best throughput for the same
	// cell and Regret the winner's relative shortfall against it
	// ((census-tuned)/census; negative when the tuner found better).
	// Both are zero when the store has no cell to compare against —
	// test CensusBest before trusting Regret.
	CensusBest float64
	Regret     float64
}

// candidate is one variant's state across the session.
type candidate struct {
	cfg     styles.Config
	name    string
	origin  string
	score   float64
	scored  bool
	failed  bool
	failMsg string
}

// tuner carries one session's working state.
type tuner struct {
	opt    Options
	space  []styles.Config
	budget int
	pilot  int
	esc    int
	keep   float64

	j      *journal
	replay *replayState
	jerr   error // first journal write error; reported at the end

	fresh    int
	replayed int
	rungs    int

	// tc is the session span; cur is the phase (rung or refine) span
	// current trials nest under.
	tc  trace.Ctx
	cur trace.Ctx

	all []*candidate // every candidate ever trialed, for best-so-far
}

// errStop is the internal signal that the session must end now.
// budget distinguishes the planned cap (normal completion when it
// lands in refinement, Partial mid-race) from a guard trip (always
// Partial); reason goes to PartialReason.
type errStop struct {
	reason string
	budget bool
}

func (e errStop) Error() string { return e.reason }

// Run executes one tuning session.
func Run(opt Options) (Result, error) {
	if opt.Runner == nil {
		return Result{}, errors.New("tune: Options.Runner is required")
	}
	space := styles.Enumerate(opt.Algo, opt.Model)
	if len(space) == 0 {
		return Result{}, fmt.Errorf("tune: no valid variants for %s/%s", opt.Algo, opt.Model)
	}
	t := &tuner{opt: opt, space: space}
	ssp := opt.Trace.Start("tune.session")
	if ssp.Live() {
		ssp = ssp.Attr("algo", opt.Algo.String()).Attr("model", opt.Model.String()).
			Attr("device", opt.Device)
	}
	defer func() {
		if ts, ok := opt.Runner.(TraceSetter); ok {
			ts.SetTrace(trace.Ctx{})
		}
		ssp.End()
		ssp.Flush()
	}()
	t.tc = ssp
	t.cur = ssp
	t.budget = opt.MaxMeasurements
	if t.budget <= 0 {
		// A quarter of the space, rounded down so the default never
		// overshoots the 25%-of-sweep spending bar; at least one trial.
		t.budget = max(1, len(space)/4)
	}
	t.pilot = opt.PilotReps
	if t.pilot <= 0 {
		t.pilot = 1
	}
	t.esc = opt.Escalate
	if t.esc <= 0 {
		t.esc = 2
	}
	t.keep = opt.KeepFraction
	if t.keep <= 0 || t.keep >= 1 {
		t.keep = 0.5
	}

	cohortN := opt.Cohort
	if cohortN <= 0 {
		cohortN = cohortFor(t.budget, len(space), t.pilot, t.esc, t.keep)
	}
	if cohortN > len(space) {
		cohortN = len(space)
	}
	if cohortN < 1 {
		cohortN = 1
	}

	plan := evPlan{
		Ev: "plan", V: journalVersion,
		Algo: opt.Algo.String(), Model: opt.Model.String(), Device: opt.Device,
		Space: len(space), Budget: t.budget, Cohort: cohortN,
		Pilot: t.pilot, Escalate: t.esc, Keep: t.keep, Seed: opt.Seed,
	}
	if opt.Journal != "" {
		if opt.Resume {
			st, err := loadJournal(opt.Journal)
			if err != nil {
				return Result{}, err
			}
			if err := st.matches(plan); err != nil {
				return Result{}, err
			}
			t.replay = st
		}
		j, err := openJournal(opt.Journal)
		if err != nil {
			return Result{}, err
		}
		t.j = j
		defer t.j.close()
	}
	t.emit(plan)
	opt.Observer.plan(len(space), t.budget, cohortN)

	cohort := t.seedCohort(cohortN)
	for _, c := range cohort {
		t.emit(evCand{Ev: "cand", Name: c.name, Origin: c.origin})
		opt.Observer.candidate(c.name, c.origin)
	}

	winner, stopReason := t.race(cohort)
	if stopReason == "" && len(t.space) > 1 {
		winner, stopReason = t.refine(winner)
	}

	res := Result{
		Space:        len(space),
		Measurements: t.fresh,
		Replayed:     t.replayed,
		Rungs:        t.rungs,
	}
	if stopReason != "" {
		res.Partial = true
		res.PartialReason = stopReason
		winner = t.bestSoFar()
	}
	if winner == nil {
		t.emit(evWinner{Ev: "winner", Partial: res.Partial, Reason: res.PartialReason,
			Trials: t.fresh + t.replayed, Rungs: t.rungs})
		if t.jerr != nil {
			return res, t.jerr
		}
		if res.Partial {
			return res, fmt.Errorf("tune: stopped (%s) before any variant was measured", res.PartialReason)
		}
		return res, errors.New("tune: every candidate failed")
	}
	res.Best = winner.cfg
	res.Tput = winner.score
	res.Rationale = t.rationale(winner, cohortN, res.Partial)
	if opt.Store != nil && opt.Input != "" {
		if c, ok := opt.Store.Best(opt.Algo, opt.Model, opt.Input, opt.Device); ok && c.Tput > 0 {
			res.CensusBest = c.Tput
			res.Regret = (c.Tput - winner.score) / c.Tput
		}
	}
	t.emit(evWinner{Ev: "winner", Name: winner.name, Tput: winner.score,
		Trials: t.fresh + t.replayed, Rungs: t.rungs,
		Partial: res.Partial, Reason: res.PartialReason})
	opt.Observer.winner(winner.name, winner.score, t.fresh+t.replayed, res.Partial)
	return res, t.jerr
}

// cohortFor sizes the initial cohort so the projected racing cost
// (raceCost) fits in roughly half the budget, leaving the other half
// for refinement. The split matters: the race is breadth (escaping the
// advisor's neighborhood), refinement is depth (fixing the winner's
// remaining wrong dimensions), and dimension interactions mean the
// hill climb usually needs two passes to converge — starving it below
// ~half the budget measurably raises regret on the CUDA cells.
// Monotonic search; at least 1, at most spaceN.
func cohortFor(budget, spaceN, pilot, esc int, keep float64) int {
	if budget < 2*pilot {
		return 1
	}
	target := (budget + 1) / 2
	best := 1
	for c := 2; c <= spaceN; c++ {
		if raceCost(c, keep, pilot, esc) <= target {
			best = c
		} else {
			break
		}
	}
	return best
}

// raceCost is the projected trial count of racing a cohort of c to one
// survivor: each rung times every alive candidate reps times, survivors
// shrink by keep (at least one fewer per rung), reps escalate by esc.
func raceCost(c int, keep float64, pilot, esc int) int {
	cost := 0
	reps := pilot
	for alive := c; alive > 1; {
		cost += alive * reps
		next := int(math.Ceil(float64(alive) * keep))
		if next >= alive {
			next = alive - 1
		}
		if next < 1 {
			next = 1
		}
		alive = next
		reps *= esc
	}
	return cost
}

// seedCohort assembles the initial cohort in deterministic priority
// order: the advisor's pick, the store's exact-input best, the store's
// nearest-shape bests, the advisor pick's single-dimension neighborhood,
// then seeded-random fill from the rest of the space.
func (t *tuner) seedCohort(n int) []*candidate {
	inSpace := make(map[string]bool, len(t.space))
	for _, c := range t.space {
		inSpace[c.Name()] = true
	}
	seen := map[string]bool{}
	var cohort []*candidate
	add := func(cfg styles.Config, origin string) bool {
		name := cfg.Name()
		if len(cohort) >= n || seen[name] || !inSpace[name] {
			return false
		}
		seen[name] = true
		cohort = append(cohort, &candidate{cfg: cfg, name: name, origin: origin})
		return true
	}

	rec := advisor.Recommend(t.opt.Algo, t.opt.Model, t.opt.Shape)
	add(rec.Config, "advisor")

	if t.opt.Store != nil {
		if t.opt.Input != "" {
			if c, ok := t.opt.Store.Best(t.opt.Algo, t.opt.Model, t.opt.Input, t.opt.Device); ok {
				add(c.Cfg, "store")
			}
		}
		for _, c := range t.opt.Store.BestForShape(t.opt.Algo, t.opt.Model, t.opt.Device, t.opt.Shape, 3) {
			add(c.Cfg, "store-shape")
		}
	}

	for _, dim := range styles.Dims {
		if !dim.Applies(rec.Config) {
			continue
		}
		for v := 0; v < dim.NumValues; v++ {
			m := dim.Set(rec.Config, v)
			if m != rec.Config && styles.Valid(m) {
				add(m, "mutate:"+dim.Key)
			}
		}
	}

	rng := rand.New(rand.NewSource(t.opt.Seed))
	for _, i := range rng.Perm(len(t.space)) {
		if len(cohort) >= n {
			break
		}
		add(t.space[i], "fill")
	}
	return cohort
}

// checkStop reports whether the session must end before the next trial.
func (t *tuner) checkStop() error {
	if err := t.opt.Guard.Err(); err != nil {
		return errStop{reason: err.Error()}
	}
	if t.fresh+t.replayed >= t.budget {
		return errStop{reason: "measurement budget exhausted", budget: true}
	}
	return nil
}

// trial runs (or replays) one timed rep of c and folds the result into
// its score. rung is -1 during refinement.
func (t *tuner) trial(c *candidate, rung, rep int) error {
	if err := t.checkStop(); err != nil {
		return err
	}
	tsp := t.cur.Start("tune.trial")
	if tsp.Live() {
		tsp = tsp.Attr("variant", c.name)
	}
	defer func() {
		tsp.End()
		// Trial end is a run boundary: push its spans to the journal.
		t.tc.Flush()
	}()
	var (
		tput     float64
		ok       bool
		msg      string
		replayed bool
	)
	if e, hit := t.replay.next(c.name); hit {
		tput, ok, msg, replayed = e.Tput, e.OK, e.Err, true
		t.replayed++
	} else {
		if ts, isTS := t.opt.Runner.(TraceSetter); isTS {
			ts.SetTrace(tsp)
		}
		v, err := t.opt.Runner.Measure(c.cfg)
		if err != nil {
			// A session-guard trip surfaces as a failed run; charge it
			// to the session, not the variant.
			if gerr := t.opt.Guard.Err(); gerr != nil {
				return errStop{reason: gerr.Error()}
			}
			ok, msg = false, err.Error()
		} else {
			tput, ok = v, true
		}
		t.fresh++
	}
	t.emit(evTrial{Ev: "trial", Rung: rung, Name: c.name, Rep: rep,
		Tput: tput, OK: ok, Err: msg})
	t.opt.Observer.trial(rung, c.name, rep, tput, ok, replayed)
	if !ok {
		c.failed = true
		c.failMsg = msg
		return nil
	}
	c.scored = true
	if tput > c.score {
		c.score = tput
	}
	return nil
}

// race runs the successive-halving rungs and returns the sole survivor,
// or ("", reason) when the session stopped early.
func (t *tuner) race(cohort []*candidate) (*candidate, string) {
	t.all = append(t.all, cohort...)
	alive := cohort
	reps := t.pilot
	for rung := 0; len(alive) > 1; rung++ {
		rsp := t.tc.Start("tune.rung")
		if rsp.Live() {
			rsp = rsp.Attr("rung", fmt.Sprint(rung)).Attr("alive", fmt.Sprint(len(alive))).
				Attr("reps", fmt.Sprint(reps))
		}
		t.cur = rsp
		t.emit(evRung{Ev: "rung", Rung: rung, Alive: len(alive), Reps: reps})
		t.opt.Observer.rungStart(rung, len(alive), reps)
		for _, c := range alive {
			for r := 0; r < reps; r++ {
				if c.failed {
					break
				}
				if err := t.trial(c, rung, r); err != nil {
					var stop errStop
					errors.As(err, &stop)
					rsp.End()
					return nil, stop.reason
				}
			}
		}
		alive = t.eliminate(alive, rung)
		rsp.End()
		t.cur = t.tc
		t.rungs++
		reps *= t.esc
		if len(alive) == 0 {
			return nil, ""
		}
	}
	if len(alive) == 1 && !alive[0].scored {
		// Cohort of one: score it once so the winner has a throughput.
		if err := t.trial(alive[0], 0, 0); err != nil {
			var stop errStop
			errors.As(err, &stop)
			return nil, stop.reason
		}
		if alive[0].failed {
			return nil, ""
		}
	}
	if len(alive) == 0 {
		return nil, ""
	}
	return alive[0], ""
}

// eliminate applies the median-ratio rule to one rung: failed
// candidates are always cut; of the rest, only those scoring at or
// above the rung median survive, further capped to KeepFraction of the
// field (ties and lopsided rungs otherwise stall the halving). The
// survivor list keeps score-descending order (name-ascending on ties),
// so alive[0] is always the incumbent best.
func (t *tuner) eliminate(alive []*candidate, rung int) []*candidate {
	var ok []*candidate
	for _, c := range alive {
		if c.failed {
			t.cur.PointAttr("tune.eliminate", "variant", c.name)
			t.emit(evElim{Ev: "elim", Rung: rung, Name: c.name, Failed: true})
			t.opt.Observer.eliminated(rung, c.name, 0, 0)
		} else {
			ok = append(ok, c)
		}
	}
	if len(ok) <= 1 {
		return ok
	}
	sort.SliceStable(ok, func(i, j int) bool {
		if ok[i].score != ok[j].score {
			return ok[i].score > ok[j].score
		}
		return ok[i].name < ok[j].name
	})
	med := ok[len(ok)/2].score // upper median of the descending order
	maxKeep := int(math.Ceil(float64(len(ok)) * t.keep))
	if maxKeep >= len(ok) {
		maxKeep = len(ok) - 1
	}
	if maxKeep < 1 {
		maxKeep = 1
	}
	cut := maxKeep
	for cut > 1 && ok[cut-1].score < med {
		cut--
	}
	for _, c := range ok[cut:] {
		t.cur.PointAttr("tune.eliminate", "variant", c.name)
		t.emit(evElim{Ev: "elim", Rung: rung, Name: c.name, Score: c.score, Median: med})
		t.opt.Observer.eliminated(rung, c.name, c.score, med)
	}
	return ok[:cut]
}

// neighbor is one refinement move: a config one intent away from the
// incumbent, tagged with the dimension that drove it.
type neighbor struct {
	cfg    styles.Config
	dim    string
	origin string
}

// dimDist counts the style dimensions on which two configs differ.
func dimDist(a, b styles.Config) int {
	d := 0
	for _, dim := range styles.Dims {
		if (dim.Applies(a) || dim.Applies(b)) && dim.Value(a) != dim.Value(b) {
			d++
		}
	}
	return d
}

// neighbors returns the refinement neighborhood of base in
// deterministic order: every applicable single-dimension value change,
// and — when a change is invalid on its own — its nearest valid
// repairs: the variants of the space that hold the new value with the
// fewest other dimensions changed. The repairs matter because the
// validity matrix couples dimensions (e.g. §2: edge-based iteration is
// thread-granularity-only), so some of the best moves are only legal
// as joint changes a plain Hamming-1 climb can never make.
func (t *tuner) neighbors(base styles.Config) []neighbor {
	var out []neighbor
	seen := map[string]bool{base.Name(): true}
	add := func(cfg styles.Config, dim *styles.Dim, origin string) {
		if name := cfg.Name(); !seen[name] {
			seen[name] = true
			out = append(out, neighbor{cfg: cfg, dim: dim.Key, origin: origin})
		}
	}
	for _, dim := range styles.Dims {
		if !dim.Applies(base) {
			continue
		}
		for v := 0; v < dim.NumValues; v++ {
			m := dim.Set(base, v)
			if m == base {
				continue
			}
			if styles.Valid(m) {
				add(m, dim, "refine:"+dim.Key)
				continue
			}
			minD := len(styles.Dims) + 1
			var reps []styles.Config
			for _, c := range t.space {
				if dim.Set(c, v) != c { // c does not hold the new value
					continue
				}
				if d := dimDist(c, m); d < minD {
					minD, reps = d, reps[:0]
					reps = append(reps, c)
				} else if d == minD {
					reps = append(reps, c)
				}
			}
			for i, c := range reps {
				if i >= 4 { // bound the per-move fan-out
					break
				}
				add(c, dim, "repair:"+dim.Key)
			}
		}
	}
	return out
}

// refine hill-climbs the race winner: every neighborhood move of the
// incumbent is trialed (pilot reps, cached scores reused), a strictly
// better neighbor becomes the new incumbent, and passes repeat until a
// full pass yields no improvement or the budget runs out.
func (t *tuner) refine(winner *candidate) (*candidate, string) {
	if winner == nil {
		return nil, ""
	}
	rsp := t.tc.Start("tune.refine")
	defer rsp.End()
	t.cur = rsp
	cache := map[string]*candidate{}
	for _, c := range t.all {
		cache[c.name] = c
	}
	for improved := true; improved; {
		improved = false
		for _, nb := range t.neighbors(winner.cfg) {
			name := nb.cfg.Name()
			c := cache[name]
			if c == nil {
				c = &candidate{cfg: nb.cfg, name: name, origin: nb.origin}
				cache[name] = c
				t.all = append(t.all, c)
				t.emit(evCand{Ev: "cand", Name: name, Origin: c.origin})
				t.opt.Observer.candidate(name, c.origin)
				for r := 0; r < t.pilot && !c.failed; r++ {
					if err := t.trial(c, -1, r); err != nil {
						var stop errStop
						errors.As(err, &stop)
						if stop.budget {
							// Spending the planned budget during
							// refinement is normal completion: the
							// race already crowned this winner.
							return winner, ""
						}
						return winner, stop.reason
					}
				}
			}
			if !c.failed && c.scored && c.score > winner.score {
				winner = c
				improved = true
				rsp.PointAttr("tune.improve", "variant", name)
				t.emit(evImprove{Ev: "improve", Name: name, Dim: nb.dim, Tput: c.score})
				t.opt.Observer.improved(name, nb.dim, c.score)
			}
		}
	}
	return winner, ""
}

// bestSoFar returns the highest-scoring non-failed candidate trialed so
// far (ties to the smaller name), or nil when nothing scored.
func (t *tuner) bestSoFar() *candidate {
	var best *candidate
	for _, c := range t.all {
		if c.failed || !c.scored {
			continue
		}
		if best == nil || c.score > best.score ||
			(c.score == best.score && c.name < best.name) {
			best = c
		}
	}
	return best
}

// rationale renders the session's story for the Result.
func (t *tuner) rationale(winner *candidate, cohortN int, partial bool) []string {
	lines := []string{
		fmt.Sprintf("raced %d of %d applicable variants over %d rung(s), eliminating below the rung median",
			cohortN, len(t.space), t.rungs),
		fmt.Sprintf("winner entered as %q", winner.origin),
		fmt.Sprintf("spent %d trial(s) of a %d budget (full sweep: %d)",
			t.fresh+t.replayed, t.budget, len(t.space)),
	}
	if t.replayed > 0 {
		lines = append(lines, fmt.Sprintf("%d trial(s) replayed from the journal", t.replayed))
	}
	if partial {
		lines = append(lines, "stopped early; winner is best-so-far")
	}
	return lines
}

// emit journals an event, latching the first write error.
func (t *tuner) emit(ev any) {
	if err := t.j.write(ev); err != nil && t.jerr == nil {
		t.jerr = fmt.Errorf("tune: journal: %w", err)
	}
}
